//! Determinism and reproducibility guarantees.
//!
//! The paper's motivation is *predictable* performance; this repo also
//! guarantees predictable *results*: the masked product is bit-identical
//! across thread counts, schedules, tile counts and repeated runs, and
//! the synthetic suite is bit-identical across generations.

use masked_spgemm_repro::prelude::*;

#[test]
fn output_independent_of_thread_count() {
    let spec = suite_specs().into_iter().find(|s| s.name == "com-LiveJournal").unwrap();
    let a = suite_graph(&spec, 0.05).spones(1u64);
    let reference = spgemm::<PlusPair>(
        &a,
        &a,
        &a,
        &Config::builder().n_threads(1).build(),
    )
    .unwrap().0;
    for n_threads in [2, 3, 4, 8] {
        let got = spgemm::<PlusPair>(
            &a,
            &a,
            &a,
            &Config::builder().n_threads(n_threads).build(),
        )
        .unwrap().0;
        assert_eq!(got, reference, "{n_threads} threads");
    }
}

#[test]
fn output_independent_of_schedule_and_chunk() {
    let spec = suite_specs().into_iter().find(|s| s.name == "stokes").unwrap();
    let a = suite_graph(&spec, 0.04).spones(1u64);
    let reference =
        spgemm::<PlusPair>(&a, &a, &a, &Config::builder().n_threads(2).build())
            .unwrap().0;
    for schedule in [
        Schedule::Static,
        Schedule::Dynamic { chunk: 1 },
        Schedule::Dynamic { chunk: 4 },
        Schedule::Dynamic { chunk: 64 },
    ] {
        let got = spgemm::<PlusPair>(
            &a,
            &a,
            &a,
            &Config::builder().schedule(schedule).n_threads(2).build(),
        )
        .unwrap().0;
        assert_eq!(got, reference, "{schedule:?}");
    }
}

#[test]
fn repeated_runs_are_identical() {
    let spec = suite_specs().into_iter().find(|s| s.name == "europe_osm").unwrap();
    let a = suite_graph(&spec, 0.05).spones(1u64);
    let cfg = Config::builder().n_threads(2).build();
    let first = spgemm::<PlusPair>(&a, &a, &a, &cfg).unwrap().0;
    for _ in 0..5 {
        assert_eq!(spgemm::<PlusPair>(&a, &a, &a, &cfg).unwrap().0, first);
    }
}

#[test]
fn suite_generation_is_reproducible() {
    for spec in suite_specs() {
        let a = suite_graph(&spec, 0.03);
        let b = suite_graph(&spec, 0.03);
        assert_eq!(a, b, "{}", spec.name);
    }
}

#[test]
fn stats_are_consistent_with_output() {
    let spec = suite_specs().into_iter().find(|s| s.name == "as-Skitter").unwrap();
    let a = suite_graph(&spec, 0.05).spones(1u64);
    let cfg = Config::builder().n_threads(2).n_tiles(64).build();
    let (c, stats) = spgemm::<PlusPair>(&a, &a, &a, &cfg).unwrap();
    assert_eq!(stats.output_nnz, c.nnz());
    assert_eq!(stats.n_tiles, 64.min(a.nrows()));
    assert_eq!(
        stats.thread_reports.iter().map(|r| r.tiles_run).sum::<usize>(),
        stats.n_tiles
    );
    // Eq. 2 lower bound: work ≥ nnz(M) since every row counts its mask
    assert!(stats.estimated_work >= a.nnz() as u64);
}
