//! Concurrent execution guarantees: many sessions and many service
//! tenants multiplexed onto one executor stay bit-identical to serial
//! execution, tile faults stay confined to the run that hit them, and
//! pool-structural loss surfaces as a clean, terminal refusal — never a
//! hang, never a corrupted sibling.
//!
//! This suite is the tier-1 face of the adversarial harness in
//! `mspgemm_core::stress`; the seeded schedules make every failure
//! replayable. It must pass identically with `MSPGEMM_FAILPOINTS`
//! armed (the CI concurrency step runs it both ways).

use masked_spgemm_repro::prelude::*;
use masked_spgemm_repro::sparse::SparseError;
use std::sync::Arc;

/// Deterministic suite operand: adjacency structure over `PlusPair`
/// (pattern semiring), the shape every graph-algorithm caller uses.
fn graph(name: &str, scale: f64) -> Csr<u64> {
    let spec = suite_specs().into_iter().find(|s| s.name == name).expect("unknown suite graph");
    suite_graph(&spec, scale).spones(1u64)
}

/// Every `stride`-th row of the identity pattern — the frontier-style
/// mask that makes masked products small relative to their operands.
fn frontier_mask(a: &Csr<u64>, stride: usize) -> Csr<u64> {
    let mut coo = Coo::new(a.nrows(), a.ncols());
    for i in (0..a.nrows()).step_by(stride.max(1)) {
        coo.push(i, i % a.ncols(), 1u64);
    }
    coo.to_csr_with(|v, _| v)
}

fn stress_cases(a: &Arc<Csr<u64>>) -> Vec<StressCase<PlusPair>> {
    [1usize, 4, 16]
        .into_iter()
        .map(|stride| StressCase {
            a: Arc::clone(a),
            b: Arc::clone(a),
            mask: Arc::new(frontier_mask(a, stride)),
            config: Config::default(),
        })
        .chain(std::iter::once(StressCase {
            // one legacy-assembly case: batches route it down the
            // sequential dispatch path next to multiplexed siblings
            a: Arc::clone(a),
            b: Arc::clone(a),
            mask: Arc::new(frontier_mask(a, 8)),
            config: Config::builder().assembly(Assembly::Legacy).build(),
        }))
        .collect()
}

/// N threads × M sessions on one executor: every concurrent reply is
/// bit-identical to the serial one-shot reference, across the whole
/// preset grid.
#[test]
fn concurrent_sessions_match_serial_across_presets() {
    let a = graph("GAP-road", 0.06);
    let exec = Executor::new();
    for preset in Preset::all() {
        let cfg = preset_config::<PlusPair>(preset, &a, &a, &a, 2);
        let (want, _) = exec.execute::<PlusPair>(&a, &a, &a, &cfg).expect("serial reference");
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let (a, want, exec, cfg) = (&a, &want, &exec, &cfg);
                scope.spawn(move || {
                    let mut session = Session::<PlusPair>::on(exec, *cfg);
                    for rep in 0..3 {
                        let (got, _) = session.execute(a, a, a).expect("session execute");
                        assert_eq!(
                            &got, want,
                            "{}: thread {worker} rep {rep} diverged from serial",
                            cfg.label()
                        );
                    }
                    assert_eq!(session.rebuilds(), 0, "structure never drifted");
                });
            }
        });
    }
}

/// The adversarial schedule: concurrent tenants submitting, cancelling
/// and abandoning jobs against one service. Every reply must be
/// bit-identical to the serial reference, the queue must drain to zero,
/// and the accounting must close exactly.
#[test]
fn stress_replies_are_bit_identical_and_queue_drains() {
    let a = Arc::new(graph("stokes", 0.05));
    let exec = Executor::new();
    let spec = StressSpec {
        tenants: 6,
        runs_per_tenant: 15,
        queue_capacity: 32,
        batch_max: 8,
        ..StressSpec::default()
    };
    let report = run_stress::<PlusPair>(&exec, spec, &stress_cases(&a)).expect("stress run");
    assert_eq!(report.mismatches, 0, "a concurrent reply diverged from serial: {report:?}");
    assert_eq!(report.queue_depth_end, 0, "queue slots leaked: {report:?}");
    assert_eq!(
        report.submitted,
        report.completed + report.cancelled + report.dropped + report.failed,
        "accounting does not close: {report:?}"
    );
}

/// Pool-structural loss is terminal and clean: every queued tenant gets
/// `ExecutorPoisoned`, the queue drains to zero, and later submissions
/// are refused with the same error — no hang, no partial state.
#[test]
fn poison_surfaces_to_every_tenant_and_queue_drains() {
    let a = Arc::new(graph("GAP-road", 0.04));
    let mask = Arc::new(frontier_mask(&a, 4));
    let exec = Executor::new();
    exec.debug_poison("synthetic pool-structural failure");

    let service: Service<PlusPair> =
        Service::on(&exec, ServiceOptions { queue_capacity: 64, ..ServiceOptions::default() });
    let mut tickets = Vec::new();
    let mut refused = 0usize;
    for tenant in 0..12u32 {
        match service.submit(
            Arc::clone(&a),
            Arc::clone(&a),
            Arc::clone(&mask),
            Config::default(),
            SubmitOptions { tenant, ..SubmitOptions::default() },
        ) {
            Ok(ticket) => tickets.push(ticket),
            // the dispatcher may already have latched the poison and
            // closed the queue — then the refusal itself is the poison
            Err(SparseError::ExecutorPoisoned { .. }) => refused += 1,
            Err(other) => panic!("unexpected submit refusal: {other:?}"),
        }
    }
    assert!(!tickets.is_empty() || refused > 0, "nothing was submitted");

    for ticket in tickets {
        match ticket.wait() {
            Err(SparseError::ExecutorPoisoned { detail }) => {
                assert!(detail.contains("synthetic"), "poison detail lost: {detail}");
            }
            other => panic!("queued tenant must see the poison, got {other:?}"),
        }
    }
    assert_eq!(service.depth(), 0, "poisoned queue did not drain");

    // the refusal is sticky: later submissions fail the same way
    match service.submit(
        Arc::clone(&a),
        Arc::clone(&a),
        Arc::clone(&mask),
        Config::default(),
        SubmitOptions::default(),
    ) {
        Err(SparseError::ExecutorPoisoned { .. }) => {}
        Err(other) => panic!("post-poison submit must be refused as poisoned, got {other:?}"),
        Ok(_) => panic!("post-poison submit must be refused, was admitted"),
    }
}

/// The PR-5 flat-worker-count invariant, extended to the concurrent
/// case: running the whole multi-tenant stress harness repeatedly on the
/// process-wide executor spawns workers for the first run only — later
/// runs (and their service dispatchers, which come and go per run) reuse
/// the parked pool.
#[test]
fn repeated_stress_runs_keep_worker_count_flat() {
    let a = Arc::new(graph("europe_osm", 0.04));
    let exec = Executor::global();
    let spec = StressSpec {
        tenants: 4,
        runs_per_tenant: 8,
        queue_capacity: 32,
        batch_max: 8,
        ..StressSpec::default()
    };
    let cases = stress_cases(&a);

    let first = run_stress::<PlusPair>(exec, spec, &cases).expect("first stress run");
    assert_eq!(first.mismatches, 0, "{first:?}");
    let after_first = exec.spawned_workers();
    assert!(after_first > 0, "first run must have spawned the pool");

    for round in 0..2 {
        let report = run_stress::<PlusPair>(exec, spec, &cases).expect("repeat stress run");
        assert_eq!(report.mismatches, 0, "round {round}: {report:?}");
        assert_eq!(report.queue_depth_end, 0, "round {round}: {report:?}");
        assert_eq!(
            exec.spawned_workers(),
            after_first,
            "round {round} spawned extra workers"
        );
    }
}
