//! Cross-crate equivalence: every (iteration space × accumulator × tiling
//! × schedule) configuration must produce the identical masked product on
//! every structural class of the synthetic suite, matching the dense
//! oracle. This is the repo's master correctness test — any kernel,
//! accumulator or scheduler bug lands here.

use masked_spgemm_repro::prelude::*;

const SCALE: f64 = 0.04;

fn suite_small() -> Vec<(String, Csr<u64>)> {
    suite_specs()
        .iter()
        .map(|s| (s.name.to_string(), suite_graph(s, SCALE).spones(1u64)))
        .collect()
}

fn oracle(a: &Csr<u64>) -> Csr<u64> {
    Dense::masked_matmul::<PlusPair, u64>(a, a, a)
}

#[test]
fn all_iteration_spaces_match_oracle_on_every_class() {
    for (name, a) in suite_small() {
        let want = oracle(&a);
        for iteration in [
            IterationSpace::Vanilla,
            IterationSpace::MaskAccumulate,
            IterationSpace::CoIterate,
            IterationSpace::Hybrid { kappa: 1.0 },
        ] {
            let cfg = Config::builder().iteration(iteration).n_threads(2).n_tiles(32).build();
            let got = spgemm::<PlusPair>(&a, &a, &a, &cfg).unwrap().0;
            assert_eq!(got, want, "{name} / {}", iteration.label());
        }
    }
}

#[test]
fn all_accumulators_match_oracle_on_every_class() {
    for (name, a) in suite_small() {
        let want = oracle(&a);
        for accumulator in AccumulatorKind::all() {
            let cfg = Config::builder().accumulator(accumulator).n_threads(2).n_tiles(16).build();
            let got = spgemm::<PlusPair>(&a, &a, &a, &cfg).unwrap().0;
            assert_eq!(got, want, "{name} / {}", accumulator.label());
        }
    }
}

#[test]
fn all_tiling_schedules_match_oracle() {
    // one graph per class is enough here; the cross product is the point
    let picks = ["GAP-road", "com-Orkut", "circuit5M", "uk-2002"];
    for (name, a) in suite_small() {
        if !picks.contains(&name.as_str()) {
            continue;
        }
        let want = oracle(&a);
        for tiling in TilingStrategy::all() {
            for schedule in Schedule::all() {
                for n_tiles in [1, 2, 7, 64, 100_000] {
                    let cfg = Config::builder().tiling(tiling).schedule(schedule).n_tiles(n_tiles).n_threads(2).build();
                    let got = spgemm::<PlusPair>(&a, &a, &a, &cfg).unwrap().0;
                    assert_eq!(
                        got, want,
                        "{name} / {} / {} / {n_tiles} tiles",
                        tiling.label(),
                        schedule.label()
                    );
                }
            }
        }
    }
}

#[test]
fn guided_schedule_matches_oracle() {
    let spec = suite_specs().into_iter().find(|s| s.name == "hollywood-2009").unwrap();
    let a = suite_graph(&spec, SCALE).spones(1u64);
    let want = oracle(&a);
    for chunk in [1, 8] {
        let cfg = Config::builder().schedule(Schedule::Guided { chunk }).n_threads(2).n_tiles(64).build();
        assert_eq!(spgemm::<PlusPair>(&a, &a, &a, &cfg).unwrap().0, want);
    }
}

#[test]
fn two_dimensional_tiling_matches_oracle() {
    let spec = suite_specs().into_iter().find(|s| s.name == "com-Orkut").unwrap();
    let a = suite_graph(&spec, SCALE).spones(1u64);
    let want = oracle(&a);
    let cfg = Config::builder().n_threads(2).n_tiles(16).build();
    for bands in [2, 4, 16] {
        let got = masked_spgemm_2d::<PlusPair>(&a, &a, &a, &cfg, bands).unwrap();
        assert_eq!(got, want, "{bands} column bands");
    }
}

#[test]
fn masked_product_commutes_with_symmetric_permutation() {
    // P(M ⊙ (A×A))Pᵀ == (PMPᵀ) ⊙ (PAPᵀ × PAPᵀ): relabelling vertices
    // relabels the result — validates permute + driver together
    use masked_spgemm_repro::sparse::permute::{permute_symmetric, rcm_order};
    let spec = suite_specs().into_iter().find(|s| s.name == "europe_osm").unwrap();
    let a = suite_graph(&spec, SCALE).spones(1u64);
    let perm = rcm_order(&a);
    let pa = permute_symmetric(&a, &perm);
    let cfg = Config::builder().n_threads(2).build();
    let c = spgemm::<PlusPair>(&a, &a, &a, &cfg).unwrap().0;
    let pc = spgemm::<PlusPair>(&pa, &pa, &pa, &cfg).unwrap().0;
    assert_eq!(permute_symmetric(&c, &perm), pc);
}

#[test]
fn dot_product_formulation_matches_saxpy_on_every_class() {
    for (name, a) in suite_small() {
        let want = oracle(&a);
        let cfg = Config::builder().n_threads(2).n_tiles(32).build();
        let got = masked_spgemm_dot::<PlusPair>(&a, &Csc::from_csr(&a), &a, &cfg).unwrap();
        assert_eq!(got, want, "{name}: dot-product formulation");
    }
}

#[test]
fn csc_column_driver_matches_on_every_class() {
    for (name, a) in suite_small() {
        let want = oracle(&a);
        let cfg = Config::builder().n_threads(2).n_tiles(16).build();
        let ac = Csc::from_csr(&a);
        let got = masked_spgemm_csc::<PlusPair>(&ac, &ac, &ac, &cfg).unwrap();
        assert_eq!(got.to_csr(), want, "{name}: CSC column-wise driver");
    }
}

#[test]
fn model_prediction_is_correct_on_every_class() {
    for (name, a) in suite_small() {
        let pred = predict_config::<PlusPair>(&a, &a, &a, 2);
        let got = spgemm::<PlusPair>(&a, &a, &a, &pred.config).unwrap().0;
        assert_eq!(got, oracle(&a), "{name}: predicted {}", pred.config.label());
    }
}

#[test]
fn presets_agree_with_each_other() {
    for (name, a) in suite_small() {
        let mut results = Vec::new();
        for preset in Preset::all() {
            let cfg = preset_config::<PlusPair>(preset, &a, &a, &a, 2);
            results.push(spgemm::<PlusPair>(&a, &a, &a, &cfg).unwrap().0);
        }
        assert_eq!(results[0], results[1], "{name}: ss:gb vs grb");
        assert_eq!(results[1], results[2], "{name}: grb vs tuned");
    }
}

#[test]
fn kappa_extremes_are_still_exact() {
    let spec = suite_specs().into_iter().find(|s| s.name == "circuit5M").unwrap();
    let a = suite_graph(&spec, SCALE).spones(1u64);
    let want = oracle(&a);
    for kappa in [0.0, 1e-3, 1e3, f64::INFINITY] {
        let cfg = Config::builder().iteration(IterationSpace::Hybrid { kappa }).n_threads(2).build();
        let got = spgemm::<PlusPair>(&a, &a, &a, &cfg).unwrap().0;
        assert_eq!(got, want, "kappa = {kappa}");
    }
}

#[test]
fn works_over_multiple_semirings_end_to_end() {
    let spec = suite_specs().into_iter().find(|s| s.name == "as-Skitter").unwrap();
    let af = suite_graph(&spec, SCALE);
    let cfg = Config::builder().n_threads(2).n_tiles(16).build();

    // plus_times over f64
    let want = Dense::masked_matmul::<PlusTimes, f64>(&af, &af, &af);
    let got = spgemm::<PlusTimes>(&af, &af, &af, &cfg).unwrap().0;
    assert_eq!(got, want);

    // boolean
    let ab = af.spones(true);
    let want = Dense::masked_matmul::<BoolOrAnd, bool>(&ab, &ab, &ab);
    let got = spgemm::<BoolOrAnd>(&ab, &ab, &ab, &cfg).unwrap().0;
    assert_eq!(got, want);

    // tropical: masked min-plus relaxation step
    let aw = af.map_values(|v| (v as u64) + 3);
    let want = Dense::masked_matmul::<MinPlus, u64>(&aw, &aw, &aw);
    let got = spgemm::<MinPlus>(&aw, &aw, &aw, &cfg).unwrap().0;
    assert_eq!(got, want);
}

#[test]
fn symmetric_input_gives_symmetric_masked_square() {
    // A symmetric ⇒ A ⊙ (A×A) symmetric (both the product and the mask are)
    for (name, a) in suite_small() {
        let cfg = Config::builder().n_threads(2).build();
        let c = spgemm::<PlusPair>(&a, &a, &a, &cfg).unwrap().0;
        assert!(c.is_structurally_symmetric(), "{name}");
        // and value-symmetric: wedge counts are direction-independent
        let ct = c.transpose();
        assert_eq!(c, ct, "{name}: values must be symmetric too");
    }
}
