//! Application-level integration tests: the graph algorithms the paper
//! motivates, validated on the synthetic suite against independent naive
//! implementations.

use masked_spgemm_repro::prelude::*;
use mspgemm_graph::bfs::{bfs_levels_naive, UNREACHED};
use mspgemm_graph::triangles::count_triangles_naive;
use mspgemm_sparse::csr::reduce_values;

const SCALE: f64 = 0.04;

fn cfg() -> Config {
    Config::builder().n_threads(2).build()
}

#[test]
fn triangle_counts_match_naive_on_all_classes() {
    for spec in suite_specs() {
        let a = suite_graph(&spec, SCALE);
        let naive = count_triangles_naive(&a);
        let full = count_triangles(&a, &cfg()).unwrap();
        let tril = count_triangles_ll(&a, &cfg()).unwrap();
        assert_eq!(full, naive, "{}: A⊙(A×A)", spec.name);
        assert_eq!(tril, naive, "{}: L⊙(L×L)", spec.name);
    }
}

#[test]
fn social_graphs_are_triangle_rich_road_graphs_are_not() {
    // structural sanity of the generators, at the application level:
    // triangles per edge is high for social, near zero for road
    let social = suite_graph(
        &suite_specs().into_iter().find(|s| s.name == "hollywood-2009").unwrap(),
        SCALE,
    );
    let road = suite_graph(
        &suite_specs().into_iter().find(|s| s.name == "GAP-road").unwrap(),
        SCALE,
    );
    let ts = count_triangles(&social, &cfg()).unwrap() as f64 / (social.nnz() / 2) as f64;
    let tr = count_triangles(&road, &cfg()).unwrap() as f64 / (road.nnz() / 2) as f64;
    assert!(
        ts > 10.0 * tr.max(0.01),
        "social {ts:.2} vs road {tr:.2} triangles/edge"
    );
}

#[test]
fn ktruss_edges_have_sufficient_support() {
    let a = suite_graph(
        &suite_specs().into_iter().find(|s| s.name == "com-LiveJournal").unwrap(),
        SCALE,
    );
    for k in [3, 4] {
        let r = ktruss(&a, k, &cfg()).unwrap();
        if r.truss.nnz() == 0 {
            continue;
        }
        // defining property: within the truss, every edge's support ≥ k-2
        let support =
            mspgemm_graph::triangle_support(&r.truss, &cfg()).unwrap();
        for (i, j, _) in r.truss.iter() {
            let s = support.get(i, j as usize).unwrap_or(0);
            assert!(
                s >= (k - 2) as u64,
                "{k}-truss edge ({i},{j}) has support {s}"
            );
        }
        // and it is a subgraph of the input
        for (i, j, _) in r.truss.iter() {
            assert!(a.contains(i, j as usize));
        }
    }
}

#[test]
fn ktruss_is_monotone_in_k() {
    let a = suite_graph(
        &suite_specs().into_iter().find(|s| s.name == "com-Orkut").unwrap(),
        SCALE,
    );
    let mut prev_nnz = usize::MAX;
    for k in [3, 4, 5, 6] {
        let r = ktruss(&a, k, &cfg()).unwrap();
        assert!(r.truss.nnz() <= prev_nnz, "k={k} grew the truss");
        prev_nnz = r.truss.nnz();
    }
}

#[test]
fn bfs_matches_naive_on_all_classes() {
    for spec in suite_specs() {
        let a = suite_graph(&spec, SCALE);
        let got = bfs_levels(&a, 0);
        let want = bfs_levels_naive(&a, 0);
        assert_eq!(got.levels, want, "{}", spec.name);
    }
}

#[test]
fn bfs_depth_reflects_graph_class() {
    // road networks have huge diameter relative to social networks
    let road = suite_graph(
        &suite_specs().into_iter().find(|s| s.name == "europe_osm").unwrap(),
        0.08,
    );
    let social = suite_graph(
        &suite_specs().into_iter().find(|s| s.name == "com-Orkut").unwrap(),
        0.08,
    );
    let depth = |a: &Csr<f64>| {
        let r = bfs_levels(a, 0);
        r.levels.iter().filter(|&&l| l != UNREACHED).max().copied().unwrap_or(0)
    };
    let dr = depth(&road);
    let ds = depth(&social);
    assert!(dr > 3 * ds, "road diameter {dr} vs social {ds}");
}

#[test]
fn betweenness_hubs_have_high_scores() {
    let a = suite_graph(
        &suite_specs().into_iter().find(|s| s.name == "as-Skitter").unwrap(),
        SCALE,
    );
    let sources: Vec<usize> = (0..a.nrows()).step_by(7).collect();
    let bc = betweenness_centrality(&a, &sources);
    // the top-degree hub should rank in the top decile of BC
    let hub = (0..a.nrows()).max_by_key(|&i| a.row_nnz(i)).unwrap();
    let mut sorted: Vec<f64> = bc.clone();
    sorted.sort_by(|x, y| y.partial_cmp(x).unwrap());
    let p90 = sorted[a.nrows() / 10];
    assert!(
        bc[hub] >= p90,
        "hub {hub} (deg {}) has bc {} below p90 {}",
        a.row_nnz(hub),
        bc[hub],
        p90
    );
}

#[test]
fn batched_bfs_matches_single_source_on_suite() {
    let a = suite_graph(
        &suite_specs().into_iter().find(|s| s.name == "uk-2002").unwrap(),
        SCALE,
    );
    let sources = [0usize, a.nrows() / 3, a.nrows() - 1];
    let batched = bfs_levels_multi(&a, &sources);
    for (s, &src) in sources.iter().enumerate() {
        assert_eq!(batched[s], bfs_levels(&a, src).levels, "source {src}");
    }
}

#[test]
fn mis_is_valid_on_every_class() {
    for spec in suite_specs() {
        let a = suite_graph(&spec, SCALE);
        let r = maximal_independent_set(&a, 7);
        // independence
        for (i, j, _) in a.iter() {
            assert!(
                !(r.in_set[i] && r.in_set[j as usize]),
                "{}: edge ({i},{j}) inside MIS",
                spec.name
            );
        }
        // maximality
        for v in 0..a.nrows() {
            if !r.in_set[v] {
                let (cols, _) = a.row(v);
                assert!(
                    cols.iter().any(|&u| r.in_set[u as usize]),
                    "{}: vertex {v} could be added",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn connected_components_on_suite_classes() {
    // road stand-ins may fragment (kept edges); social R-MAT has one giant
    // component plus isolates — both must agree with a BFS sweep
    for name in ["GAP-road", "com-LiveJournal"] {
        let a = suite_graph(
            &suite_specs().into_iter().find(|s| s.name == name).unwrap(),
            SCALE,
        );
        let cc = connected_components(&a);
        let mut seen = vec![false; a.nrows()];
        let mut count = 0;
        for s in 0..a.nrows() {
            if !seen[s] {
                count += 1;
                for (v, &l) in bfs_levels(&a, s).levels.iter().enumerate() {
                    if l != mspgemm_graph::bfs::UNREACHED {
                        seen[v] = true;
                    }
                }
            }
        }
        assert_eq!(cc.n_components, count, "{name}");
    }
}

#[test]
fn pagerank_mass_conserved_on_suite() {
    let a = suite_graph(
        &suite_specs().into_iter().find(|s| s.name == "as-Skitter").unwrap(),
        SCALE,
    );
    let r = mspgemm_graph::pagerank(&a, &PageRankOptions::default());
    let sum: f64 = r.scores.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
}

#[test]
fn triangle_support_sums_to_six_t() {
    let a = suite_graph(
        &suite_specs().into_iter().find(|s| s.name == "circuit5M").unwrap(),
        SCALE,
    );
    let t = count_triangles(&a, &cfg()).unwrap();
    let s = mspgemm_graph::triangle_support(&a, &cfg()).unwrap();
    assert_eq!(reduce_values(&s, 0u64, |acc, v| acc + v), 6 * t);
}
