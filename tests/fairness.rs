//! Fairness regression: the service's deficit-round-robin dispatch must
//! keep a light tenant from starving behind a heavy one.
//!
//! This test lives in its own binary because it arms the process-global
//! obs registry (`arm_metrics`) and asserts on `svc.*` counter deltas —
//! sharing a process with the other service tests would pollute them.
//!
//! **The bound.** Two tenants submit at a 10:1 rate (A floods 50 jobs,
//! then B submits 5 into the standing backlog). The queue's deficit
//! round-robin guarantees every backlogged tenant at least `1/k` of the
//! dispatch slots (`k` = tenants with queued work, here 2), so B's jobs
//! clear within a small constant number of batches while A's *average*
//! wait includes sitting behind its own 50-deep backlog. We assert B's
//! mean queue delay is at most **4×** A's mean — deliberately generous
//! (the typical ratio is well under 1) so the test pins the policy
//! (no starvation, bounded inversion) rather than the scheduler's exact
//! timing. A FIFO queue fails this bound: B's jobs would all wait out
//! the entire backlog, putting B's mean near A's *maximum*.

use masked_spgemm_repro::prelude::*;
use masked_spgemm_repro::rt::obs;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn light_tenant_is_not_starved_by_a_flooding_tenant() {
    obs::arm_metrics();
    let spec = suite_specs().into_iter().find(|s| s.name == "GAP-road").expect("suite graph");
    let a = Arc::new(suite_graph(&spec, 0.12).spones(1u64));

    let exec = Executor::new();
    let service: Service<PlusPair> = Service::on(
        &exec,
        ServiceOptions { queue_capacity: 128, batch_max: 4, ..ServiceOptions::default() },
    );
    let completed_before = obs::counter_value(obs::Counter::SvcCompleted);

    let submit = |tenant: u32| {
        service.submit(
            Arc::clone(&a),
            Arc::clone(&a),
            Arc::clone(&a),
            Config::default(),
            SubmitOptions { tenant, ..SubmitOptions::default() },
        )
    };

    // tenant A floods; tenant B then drops 5 jobs into A's backlog
    let a_tickets: Vec<_> = (0..50).map(|_| submit(0).expect("tenant A submit")).collect();
    let b_tickets: Vec<_> = (0..5).map(|_| submit(1).expect("tenant B submit")).collect();

    let mean_delay = |tickets: Vec<JobTicket<PlusPair>>| -> Duration {
        let mut total = Duration::ZERO;
        let n = tickets.len() as u32;
        for ticket in tickets {
            let reply = ticket.wait().expect("service reply");
            total += reply.queue_delay;
        }
        total / n.max(1)
    };
    let mean_a = mean_delay(a_tickets);
    let mean_b = mean_delay(b_tickets);

    // the documented bound: B within 4× of A's mean (see module docs),
    // plus a small absolute floor so an empty-backlog run (dispatcher
    // faster than submission) cannot fail on sub-millisecond noise
    let bound = (mean_a * 4).max(Duration::from_millis(5));
    assert!(
        mean_b <= bound,
        "light tenant starved: mean B delay {mean_b:?} vs mean A delay {mean_a:?} (bound {bound:?})"
    );

    // every submission was dispatched and completed exactly once
    let completed = obs::counter_value(obs::Counter::SvcCompleted) - completed_before;
    assert_eq!(completed, 55, "svc.completed delta must match total submissions");
    assert_eq!(service.depth(), 0, "queue must be fully drained");
}
