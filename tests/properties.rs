//! Property-based tests (proptest) over randomly generated operands.
//!
//! Strategy: draw random COO triples, build CSR operands, and check the
//! paper-level invariants of the masked product against the dense oracle
//! and against structural facts that must hold for *any* input:
//!
//! * output pattern ⊆ mask pattern (masking is a filter);
//! * output pattern ⊆ pattern of the unmasked product;
//! * all kernels/accumulators compute the same matrix;
//! * `C = M ⊙ (A × B)` equals the two-step `(A × B) ⊙ M`.

use masked_spgemm_repro::prelude::*;
use mspgemm_graph::grb::two_step_masked;
use proptest::prelude::*;

/// Random CSR matrix via COO (duplicates collapse, keeping the last value).
fn arb_csr(nrows: usize, ncols: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    proptest::collection::vec(
        (0..nrows, 0..ncols, 1..100i32),
        0..=max_nnz,
    )
    .prop_map(move |triples| {
        let mut coo = Coo::new(nrows, ncols);
        for (i, j, v) in triples {
            coo.push(i, j, v as f64);
        }
        coo.to_csr_last()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn masked_product_matches_oracle(
        a in arb_csr(24, 24, 120),
        b in arb_csr(24, 24, 120),
        m in arb_csr(24, 24, 120),
    ) {
        let want = Dense::masked_matmul::<PlusTimes, f64>(&a, &b, &m);
        let cfg = Config { n_threads: 2, n_tiles: 5, ..Config::default() };
        let got = masked_spgemm::<PlusTimes>(&a, &b, &m, &cfg).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn output_is_subset_of_mask(
        a in arb_csr(20, 20, 100),
        m in arb_csr(20, 20, 100),
    ) {
        let c = masked_spgemm::<PlusTimes>(&a, &a, &m, &Config { n_threads: 2, ..Config::default() }).unwrap();
        for (i, j, _) in c.iter() {
            prop_assert!(m.contains(i, j as usize), "({i},{j}) not in mask");
        }
    }

    #[test]
    fn fused_equals_two_step(
        a in arb_csr(16, 16, 80),
        b in arb_csr(16, 16, 80),
        m in arb_csr(16, 16, 80),
    ) {
        let cfg = Config { n_threads: 2, n_tiles: 3, ..Config::default() };
        let fused = masked_spgemm::<PlusTimes>(&a, &b, &m, &cfg).unwrap();
        let two = two_step_masked::<PlusTimes>(&m, &a, &b).unwrap();
        prop_assert_eq!(fused, two);
    }

    #[test]
    fn iteration_spaces_agree_pairwise(
        a in arb_csr(18, 18, 90),
        m in arb_csr(18, 18, 90),
    ) {
        let mk = |iteration| Config { iteration, n_threads: 2, n_tiles: 4, ..Config::default() };
        let base = masked_spgemm::<PlusTimes>(&a, &a, &m, &mk(IterationSpace::MaskAccumulate)).unwrap();
        for it in [IterationSpace::Vanilla, IterationSpace::CoIterate, IterationSpace::Hybrid { kappa: 1.0 }] {
            let other = masked_spgemm::<PlusTimes>(&a, &a, &m, &mk(it)).unwrap();
            prop_assert_eq!(&other, &base, "{} vs mask-accum", it.label());
        }
    }

    #[test]
    fn accumulators_agree_pairwise(
        a in arb_csr(18, 18, 90),
        m in arb_csr(18, 18, 90),
    ) {
        let mk = |accumulator| Config { accumulator, n_threads: 2, ..Config::default() };
        let base = masked_spgemm::<PlusTimes>(&a, &a, &m, &mk(AccumulatorKind::Dense(MarkerWidth::W64))).unwrap();
        for acc in AccumulatorKind::all() {
            let other = masked_spgemm::<PlusTimes>(&a, &a, &m, &mk(acc)).unwrap();
            prop_assert_eq!(&other, &base, "{} vs dense64", acc.label());
        }
    }

    #[test]
    fn boolean_masked_square_is_reachability_intersection(
        a in arb_csr(15, 15, 70),
    ) {
        // over the boolean semiring, C[i,j] = 1 iff ∃k: A[i,k] ∧ A[k,j],
        // restricted to stored positions of the mask (= A here)
        let ab = a.spones(true);
        let c = masked_spgemm::<BoolOrAnd>(&ab, &ab, &ab, &Config { n_threads: 2, ..Config::default() }).unwrap();
        for (i, j, v) in c.iter() {
            prop_assert!(v, "stored boolean outputs are true");
            let (icols, _) = ab.row(i);
            let two_path = icols.iter().any(|&k| ab.contains(k as usize, j as usize));
            prop_assert!(two_path, "({i},{j}) stored but no 2-path");
        }
    }

    #[test]
    fn tiler_partitions_rows_exactly(
        work in proptest::collection::vec(0u64..1000, 1..200),
        n_tiles in 1usize..64,
    ) {
        let tiles = mspgemm_sched::balanced_tiles(&work, n_tiles);
        prop_assert_eq!(tiles.len(), n_tiles);
        prop_assert_eq!(tiles[0].lo, 0);
        prop_assert_eq!(tiles.last().unwrap().hi, work.len());
        for w in tiles.windows(2) {
            prop_assert_eq!(w[0].hi, w[1].lo);
        }
        let uniform = mspgemm_sched::uniform_tiles(work.len(), n_tiles);
        prop_assert_eq!(uniform.iter().map(|t| t.len()).sum::<usize>(), work.len());
    }

    #[test]
    fn balanced_tiles_bound_max_work(
        work in proptest::collection::vec(1u64..100, 10..200),
        n_tiles in 2usize..32,
    ) {
        // each balanced tile carries at most average + one row's work
        let total: u64 = work.iter().sum();
        let max_row = *work.iter().max().unwrap();
        let tiles = mspgemm_sched::balanced_tiles(&work, n_tiles);
        for t in &tiles {
            let tw: u64 = work[t.lo..t.hi].iter().sum();
            prop_assert!(
                tw <= total / n_tiles as u64 + max_row + 1,
                "tile {:?} work {} exceeds bound", t, tw
            );
        }
    }
}
