//! Property-based tests (in-tree `mspgemm_rt::testkit` harness) over
//! randomly generated operands.
//!
//! Strategy: draw random COO triples, build CSR operands, and check the
//! paper-level invariants of the masked product against the dense oracle
//! and against structural facts that must hold for *any* input:
//!
//! * output pattern ⊆ mask pattern (masking is a filter);
//! * output pattern ⊆ pattern of the unmasked product;
//! * all kernels/accumulators compute the same matrix;
//! * `C = M ⊙ (A × B)` equals the two-step `(A × B) ⊙ M`.

use masked_spgemm_repro::prelude::*;
use mspgemm_graph::grb::two_step_masked;
use mspgemm_rt::testkit::{check, vec_of, VecStrategy};

/// Matches the former proptest config: 64 cases per property
/// (`MSPGEMM_TESTKIT_CASES` overrides).
const CASES: usize = 64;

/// Raw COO triples for a random matrix. The strategy stays at the triple
/// level (not `Csr`) so shrinking drops/minimises entries generically; the
/// property builds the matrix via [`csr`].
fn arb_triples(
    nrows: usize,
    ncols: usize,
    max_nnz: usize,
) -> VecStrategy<(std::ops::Range<usize>, std::ops::Range<usize>, std::ops::Range<i32>)> {
    vec_of((0..nrows, 0..ncols, 1..100i32), 0..=max_nnz)
}

/// Random CSR matrix from COO triples (duplicates collapse, keeping the
/// last value).
fn csr(nrows: usize, ncols: usize, triples: &[(usize, usize, i32)]) -> Csr<f64> {
    let mut coo = Coo::new(nrows, ncols);
    for &(i, j, v) in triples {
        coo.push(i, j, v as f64);
    }
    coo.to_csr_last()
}

#[test]
fn masked_product_matches_oracle() {
    let s = (arb_triples(24, 24, 120), arb_triples(24, 24, 120), arb_triples(24, 24, 120));
    check("masked_product_matches_oracle", CASES, s, |(ta, tb, tm)| {
        let (a, b, m) = (csr(24, 24, &ta), csr(24, 24, &tb), csr(24, 24, &tm));
        let want = Dense::masked_matmul::<PlusTimes, f64>(&a, &b, &m);
        let cfg = Config::builder().n_threads(2).n_tiles(5).build();
        let got = spgemm::<PlusTimes>(&a, &b, &m, &cfg).unwrap().0;
        assert_eq!(got, want);
    });
}

#[test]
fn output_is_subset_of_mask() {
    let s = (arb_triples(20, 20, 100), arb_triples(20, 20, 100));
    check("output_is_subset_of_mask", CASES, s, |(ta, tm)| {
        let (a, m) = (csr(20, 20, &ta), csr(20, 20, &tm));
        let c = spgemm::<PlusTimes>(
            &a,
            &a,
            &m,
            &Config::builder().n_threads(2).build(),
        )
        .unwrap().0;
        for (i, j, _) in c.iter() {
            assert!(m.contains(i, j as usize), "({i},{j}) not in mask");
        }
    });
}

#[test]
fn fused_equals_two_step() {
    let s = (arb_triples(16, 16, 80), arb_triples(16, 16, 80), arb_triples(16, 16, 80));
    check("fused_equals_two_step", CASES, s, |(ta, tb, tm)| {
        let (a, b, m) = (csr(16, 16, &ta), csr(16, 16, &tb), csr(16, 16, &tm));
        let cfg = Config::builder().n_threads(2).n_tiles(3).build();
        let fused = spgemm::<PlusTimes>(&a, &b, &m, &cfg).unwrap().0;
        let two = two_step_masked::<PlusTimes>(&m, &a, &b).unwrap();
        assert_eq!(fused, two);
    });
}

#[test]
fn iteration_spaces_agree_pairwise() {
    let s = (arb_triples(18, 18, 90), arb_triples(18, 18, 90));
    check("iteration_spaces_agree_pairwise", CASES, s, |(ta, tm)| {
        let (a, m) = (csr(18, 18, &ta), csr(18, 18, &tm));
        let mk = |iteration| Config::builder().iteration(iteration).n_threads(2).n_tiles(4).build();
        let base =
            spgemm::<PlusTimes>(&a, &a, &m, &mk(IterationSpace::MaskAccumulate)).unwrap().0;
        for it in [IterationSpace::Vanilla, IterationSpace::CoIterate, IterationSpace::Hybrid { kappa: 1.0 }] {
            let other = spgemm::<PlusTimes>(&a, &a, &m, &mk(it)).unwrap().0;
            assert_eq!(other, base, "{} vs mask-accum", it.label());
        }
    });
}

#[test]
fn accumulators_agree_pairwise() {
    let s = (arb_triples(18, 18, 90), arb_triples(18, 18, 90));
    check("accumulators_agree_pairwise", CASES, s, |(ta, tm)| {
        let (a, m) = (csr(18, 18, &ta), csr(18, 18, &tm));
        let mk = |accumulator| Config::builder().accumulator(accumulator).n_threads(2).build();
        let base =
            spgemm::<PlusTimes>(&a, &a, &m, &mk(AccumulatorKind::Dense(MarkerWidth::W64)))
                .unwrap().0;
        for acc in AccumulatorKind::all() {
            let other = spgemm::<PlusTimes>(&a, &a, &m, &mk(acc)).unwrap().0;
            assert_eq!(other, base, "{} vs dense64", acc.label());
        }
    });
}

#[test]
fn boolean_masked_square_is_reachability_intersection() {
    check(
        "boolean_masked_square_is_reachability_intersection",
        CASES,
        arb_triples(15, 15, 70),
        |ta| {
            // over the boolean semiring, C[i,j] = 1 iff ∃k: A[i,k] ∧ A[k,j],
            // restricted to stored positions of the mask (= A here)
            let a = csr(15, 15, &ta);
            let ab = a.spones(true);
            let c = spgemm::<BoolOrAnd>(
                &ab,
                &ab,
                &ab,
                &Config::builder().n_threads(2).build(),
            )
            .unwrap().0;
            for (i, j, v) in c.iter() {
                assert!(v, "stored boolean outputs are true");
                let (icols, _) = ab.row(i);
                let two_path = icols.iter().any(|&k| ab.contains(k as usize, j as usize));
                assert!(two_path, "({i},{j}) stored but no 2-path");
            }
        },
    );
}

#[test]
fn tiler_partitions_rows_exactly() {
    let s = (vec_of(0u64..1000, 1..200), 1usize..64);
    check("tiler_partitions_rows_exactly", CASES, s, |(work, n_tiles)| {
        let tiles = mspgemm_sched::balanced_tiles(&work, n_tiles);
        assert_eq!(tiles.len(), n_tiles);
        assert_eq!(tiles[0].lo, 0);
        assert_eq!(tiles.last().unwrap().hi, work.len());
        for w in tiles.windows(2) {
            assert_eq!(w[0].hi, w[1].lo);
        }
        let uniform = mspgemm_sched::uniform_tiles(work.len(), n_tiles);
        assert_eq!(uniform.iter().map(|t| t.len()).sum::<usize>(), work.len());
    });
}

#[test]
fn balanced_tiles_bound_max_work() {
    let s = (vec_of(1u64..100, 10..200), 2usize..32);
    check("balanced_tiles_bound_max_work", CASES, s, |(work, n_tiles)| {
        // each balanced tile carries at most average + one row's work
        let total: u64 = work.iter().sum();
        let max_row = *work.iter().max().unwrap();
        let tiles = mspgemm_sched::balanced_tiles(&work, n_tiles);
        for t in &tiles {
            let tw: u64 = work[t.lo..t.hi].iter().sum();
            assert!(
                tw <= total / n_tiles as u64 + max_row + 1,
                "tile {t:?} work {tw} exceeds bound"
            );
        }
    });
}
