#!/bin/bash
# Regenerate every table and figure of the paper. Outputs land in results/.
set -e
export MSPGEMM_SCALE=${MSPGEMM_SCALE:-1.0}
export MSPGEMM_BUDGET_MS=${MSPGEMM_BUDGET_MS:-400}
mkdir -p results
for exp in table1 fig1 fig11 fig10 fig13 fig14 scaling; do
  echo "=== $exp ==="
  cargo run --release -q -p mspgemm-bench --bin $exp 2>results/$exp.log | tee results/$exp.txt
done
echo "=== fig12_tuner ==="
cargo run --release -q -p mspgemm-bench --bin fig12_tuner 2>results/fig12.log | tee results/fig12_tuner.txt
echo "all experiments complete"
